"""The user-study responses (paper Appendix F).

The survey instrument in Appendix F reports, in parentheses, the number of
participants (out of 25) who chose each option of every multiple-choice
question.  Those published counts are embedded here verbatim; the analysis
pipeline (balanced [-2, 2] preference scale, means, bootstrap-t confidence
intervals) re-runs on them, reproducing Figure 9 and the Hypothesis 1/2
tables exactly for the means and closely for the resampled intervals.

Interaction modes (Appendix E):

* (A) sliders + unambiguous direct manipulation;
* (B) direct manipulation with heuristics and freezing;
* (C) manual code edits only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

N_PARTICIPANTS = 25

TASKS = ("ferris", "keyboard", "tessellation")

#: Five-option balanced scales, low-to-high in paper order.
#: "A vs B": options run from "A much better" (-2) to "B much better" (+2).
#: "C vs A"/"C vs B": from "manual code edits much better" (-2) to
#: "interaction much better" (+2).
A_VS_B: Dict[str, List[int]] = {
    "ferris": [3, 14, 2, 5, 1],
    "keyboard": [0, 5, 3, 10, 7],
    "tessellation": [0, 7, 9, 6, 3],
}

C_VS_A: Dict[str, List[int]] = {
    "ferris": [0, 3, 1, 11, 10],
    "keyboard": [0, 1, 5, 14, 5],
    "tessellation": [1, 0, 8, 11, 5],
}

C_VS_B: Dict[str, List[int]] = {
    "ferris": [1, 3, 4, 9, 8],
    "keyboard": [0, 2, 2, 9, 12],
    "tessellation": [1, 0, 4, 13, 7],
}

#: "How often do you use graphic design applications?"
DESIGN_FREQUENCY = {
    "less than once a year": 0,
    "a few times a year": 9,
    "a few times a month": 11,
    "a few times a week": 5,
    "every day or almost every day": 0,
}

#: "How many years of programming experience do you have?"
PROGRAMMING_YEARS = {
    "<1": 3, "1-2": 6, "3-5": 8, "6-10": 8, "11-20": 0, ">20": 0,
}

#: "Do you plan to try using Sketch-n-Sketch to create graphics?"
PLANS_TO_TRY = {
    "certainly not": 0, "probably not": 2, "maybe": 8, "likely": 12,
    "certainly": 3,
}

#: Scale values for the five options of every comparison question.
SCALE = (-2, -1, 0, 1, 2)

#: Published means and 95% bootstrap-t confidence intervals (§E.2),
#: used by tests and reports for side-by-side comparison.
PAPER_RESULTS: Dict[str, Dict[str, Tuple[float, Tuple[float, float]]]] = {
    "a_vs_b": {
        "ferris": (-0.52, (-0.92, 0.01)),
        "keyboard": (0.76, (0.26, 1.18)),
        "tessellation": (0.20, (-0.20, 0.64)),
    },
    "c_vs_a": {
        "ferris": (1.12, (0.59, 1.47)),
        "keyboard": (0.92, (0.59, 1.21)),
        "tessellation": (0.76, (0.34, 1.10)),
    },
    "c_vs_b": {
        "ferris": (0.80, (0.25, 1.23)),
        "keyboard": (1.24, (0.73, 1.57)),
        "tessellation": (1.00, (0.53, 1.32)),
    },
}

COMPARISONS = {"a_vs_b": A_VS_B, "c_vs_a": C_VS_A, "c_vs_b": C_VS_B}


def expand_counts(counts: List[int]) -> List[int]:
    """Turn histogram counts into individual responses on the [-2, 2]
    scale, e.g. [3, 14, 2, 5, 1] → three -2s, fourteen -1s, …"""
    if len(counts) != len(SCALE):
        raise ValueError(f"expected {len(SCALE)} counts, got {len(counts)}")
    responses: List[int] = []
    for value, count in zip(SCALE, counts):
        responses.extend([value] * count)
    return responses

"""User-study data and statistical analysis (paper Appendices E and F)."""

from .analysis import (ComparisonResult, analyze_all, analyze_comparison,
                       experienced_fraction, format_figure9,
                       format_histogram, hypothesis1_table,
                       hypothesis2_holds, hypothesis2_table,
                       plans_to_try_fraction)
from .bootstrap import (DEFAULT_RESAMPLES, DEFAULT_SEED, MeanEstimate,
                        bootstrap_t_mean)
from .data import (A_VS_B, COMPARISONS, C_VS_A, C_VS_B, DESIGN_FREQUENCY,
                   N_PARTICIPANTS, PAPER_RESULTS, PLANS_TO_TRY,
                   PROGRAMMING_YEARS, SCALE, TASKS, expand_counts)

__all__ = [
    "ComparisonResult", "analyze_all", "analyze_comparison",
    "experienced_fraction", "format_figure9", "format_histogram",
    "hypothesis1_table", "hypothesis2_holds", "hypothesis2_table",
    "plans_to_try_fraction",
    "DEFAULT_RESAMPLES", "DEFAULT_SEED", "MeanEstimate", "bootstrap_t_mean",
    "A_VS_B", "COMPARISONS", "C_VS_A", "C_VS_B", "DESIGN_FREQUENCY",
    "N_PARTICIPANTS", "PAPER_RESULTS", "PLANS_TO_TRY", "PROGRAMMING_YEARS",
    "SCALE", "TASKS", "expand_counts",
]

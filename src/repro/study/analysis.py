"""User-study analysis: Figure 9, Hypotheses 1–3 (paper Appendix E.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .bootstrap import MeanEstimate, bootstrap_t_mean
from .data import (A_VS_B, COMPARISONS, C_VS_A, C_VS_B, DESIGN_FREQUENCY,
                   N_PARTICIPANTS, PAPER_RESULTS, PLANS_TO_TRY,
                   PROGRAMMING_YEARS, SCALE, TASKS, expand_counts)


@dataclass(frozen=True)
class ComparisonResult:
    comparison: str          # "a_vs_b" | "c_vs_a" | "c_vs_b"
    task: str
    counts: List[int]
    estimate: MeanEstimate
    paper_mean: float
    paper_interval: tuple

    @property
    def mean_matches_paper(self) -> bool:
        return abs(self.estimate.mean - self.paper_mean) < 1e-9


def analyze_comparison(comparison: str, task: str, **bootstrap_kwargs
                       ) -> ComparisonResult:
    counts = COMPARISONS[comparison][task]
    responses = expand_counts(counts)
    estimate = bootstrap_t_mean(responses, **bootstrap_kwargs)
    paper_mean, paper_interval = PAPER_RESULTS[comparison][task]
    return ComparisonResult(comparison, task, counts, estimate,
                            paper_mean, paper_interval)


def analyze_all(**bootstrap_kwargs) -> List[ComparisonResult]:
    return [analyze_comparison(comparison, task, **bootstrap_kwargs)
            for comparison in COMPARISONS
            for task in TASKS]


# -- Hypothesis summaries (§E.2) ----------------------------------------------

def hypothesis1_table(**kwargs) -> List[ComparisonResult]:
    """H1: simple heuristics are sometimes preferable to sliders —
    the (A) vs (B) column."""
    return [analyze_comparison("a_vs_b", task, **kwargs) for task in TASKS]


def hypothesis2_table(**kwargs) -> Dict[str, List[ComparisonResult]]:
    """H2: direct manipulation beats purely programmatic edits —
    the (C) vs (A) and (C) vs (B) columns."""
    return {
        "c_vs_a": [analyze_comparison("c_vs_a", task, **kwargs)
                   for task in TASKS],
        "c_vs_b": [analyze_comparison("c_vs_b", task, **kwargs)
                   for task in TASKS],
    }


def hypothesis2_holds(**kwargs) -> bool:
    """Both interactions preferred (positive mean) on every task."""
    tables = hypothesis2_table(**kwargs)
    return all(result.estimate.mean > 0
               for results in tables.values() for result in results)


# -- Background statistics (§E.2 / Appendix F) ----------------------------------

def experienced_fraction() -> float:
    """Fraction of participants with ≥3 years of programming experience
    (the paper reports 64%)."""
    experienced = (PROGRAMMING_YEARS["3-5"] + PROGRAMMING_YEARS["6-10"]
                   + PROGRAMMING_YEARS["11-20"] + PROGRAMMING_YEARS[">20"])
    return experienced / N_PARTICIPANTS


def plans_to_try_fraction() -> float:
    """Fraction answering 'likely' or 'certainly' to trying the tool."""
    return (PLANS_TO_TRY["likely"] + PLANS_TO_TRY["certainly"]) \
        / N_PARTICIPANTS


# -- Rendering -------------------------------------------------------------------

_HIST_CHAR = "#"


def format_histogram(counts: List[int]) -> str:
    """ASCII histogram of one comparison question (a Figure 9 edge)."""
    lines = []
    for value, count in zip(SCALE, counts):
        label = f"{value:+d}" if value else " 0"
        lines.append(f"  {label} | {_HIST_CHAR * count}{'':1s}({count})")
    return "\n".join(lines)


def format_figure9(**kwargs) -> str:
    """The full Figure 9: per-task histograms plus mean (CI) annotations,
    ours vs. paper."""
    parts: List[str] = ["User study results (paper Figure 9, Appendix E.2)"]
    titles = {"a_vs_b": "(A) Sliders  vs  (B) Heuristics",
              "c_vs_a": "(C) Code only  vs  (A) Sliders",
              "c_vs_b": "(C) Code only  vs  (B) Heuristics"}
    for comparison, title in titles.items():
        parts.append(f"\n== {title} ==")
        for task in TASKS:
            result = analyze_comparison(comparison, task, **kwargs)
            est = result.estimate
            parts.append(f"[{task.capitalize()}]  "
                         f"mean {est.mean:+.2f} "
                         f"({est.low:+.2f}, {est.high:+.2f})   "
                         f"paper {result.paper_mean:+.2f} "
                         f"({result.paper_interval[0]:+.2f}, "
                         f"{result.paper_interval[1]:+.2f})")
            parts.append(format_histogram(result.counts))
    parts.append("")
    parts.append(f"Participants with >=3 years programming: "
                 f"{100 * experienced_fraction():.0f}%  (paper: 64%)")
    parts.append(f"Plan to try the tool (likely/certainly): "
                 f"{100 * plans_to_try_fraction():.0f}%")
    return "\n".join(parts)

"""Bootstrap-t (studentized bootstrap) confidence intervals.

The paper computes "means along with 95% bootstrap-t confidence intervals"
(Appendix E.2, citing Davison & Hinkley).  The bootstrap-t interval for the
mean of x1…xn is

    [ mean − t*_{1−α/2} · se,  mean − t*_{α/2} · se ]

where se = s/√n and t*_q are quantiles of the resampled studentized pivot
t* = (mean* − mean)/se*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

DEFAULT_RESAMPLES = 10_000
DEFAULT_SEED = 20160613   # PLDI'16 started June 13, 2016


@dataclass(frozen=True)
class MeanEstimate:
    mean: float
    low: float
    high: float

    def round(self, digits: int = 2) -> "MeanEstimate":
        return MeanEstimate(round(self.mean, digits),
                            round(self.low, digits),
                            round(self.high, digits))


def bootstrap_t_mean(data: Sequence[float], *, alpha: float = 0.05,
                     resamples: int = DEFAULT_RESAMPLES,
                     seed: int = DEFAULT_SEED) -> MeanEstimate:
    """95% (by default) bootstrap-t confidence interval for the mean."""
    x = np.asarray(data, dtype=float)
    n = len(x)
    if n < 2:
        raise ValueError("need at least two observations")
    mean = float(x.mean())
    se = float(x.std(ddof=1)) / np.sqrt(n)
    if se == 0.0:
        return MeanEstimate(mean, mean, mean)
    rng = np.random.default_rng(seed)
    samples = rng.choice(x, size=(resamples, n), replace=True)
    boot_means = samples.mean(axis=1)
    boot_sds = samples.std(axis=1, ddof=1)
    boot_ses = boot_sds / np.sqrt(n)
    # Degenerate resamples (all-equal values) have se* = 0; their pivot is
    # 0 when the mean matched, else ±inf — drop them, as standard.
    valid = boot_ses > 0
    pivots = (boot_means[valid] - mean) / boot_ses[valid]
    t_low, t_high = np.quantile(pivots, [alpha / 2, 1 - alpha / 2])
    return MeanEstimate(mean,
                        float(mean - t_high * se),
                        float(mean - t_low * se))

"""Value-trace equations ``n = t`` (§2.2, §3).

A user manipulation replaces the left-hand side of an equation with the new
desired value; solving for one location in ``t`` yields a local update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..lang.ast import Loc
from ..lang.errors import LittleRuntimeError
from .trace import Trace, eval_trace, format_trace, locs


@dataclass(frozen=True)
class Equation:
    """``target = trace`` — e.g. Equation 3′ of §2.2:
    ``155 = (+ x0 (* (+ ℓ1 (+ ℓ1 ℓ0)) sep))``."""

    target: float
    trace: Trace

    def residual(self, rho: Mapping[Loc, float]) -> float:
        """``ρt − target``; 0 when the equation is satisfied."""
        return eval_trace(self.trace, rho) - self.target

    def satisfied(self, rho: Mapping[Loc, float],
                  rel_tol: float = 1e-9, abs_tol: float = 1e-6) -> bool:
        try:
            value = eval_trace(self.trace, rho)
        except (LittleRuntimeError, KeyError):
            return False
        return math.isclose(value, self.target,
                            rel_tol=rel_tol, abs_tol=abs_tol)

    def unknowns(self):
        """The candidate locations to solve for: ``Locs(t)`` (non-frozen)."""
        return locs(self.trace)

    def __str__(self) -> str:
        return f"{self.target} = {format_trace(self.trace)}"

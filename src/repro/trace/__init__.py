"""Run-time traces, substitutions and value-trace equations (paper §3)."""

from .trace import (OpTrace, Trace, all_locs, count_loc_occurrences,
                    eval_trace, format_trace, is_addition_only, locs,
                    occurrences, trace_key, trace_size)

__all__ = [
    "OpTrace", "Trace", "all_locs", "count_loc_occurrences", "eval_trace",
    "format_trace", "is_addition_only", "locs", "occurrences", "trace_key",
    "trace_size",
]

"""Value contexts, similarity, and faithful/plausible update checking (§3).

A value context V is a value with holes in place of its numbers; two values
are *similar* (V ∼ V′) when they are structurally equal up to numeric
constants with identical traces.  The definitions of faithful and plausible
updates from §3 are implemented verbatim:

* ρ is **faithful** for updates ``w1…wj ⇝ w′1…w′j`` if whenever
  ``ρe ⇓ v′ = V′(w″1,…,w″k)`` with ``V′ ∼ V``, then ``w″i = w′i`` for *all*
  ``1 ≤ i ≤ j``.
* ρ is **plausible** if ``w″i = w′i`` for *some* ``1 ≤ i ≤ j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..lang.errors import LittleError
from ..lang.values import (VBool, VClosure, VCons, VNil, VNum, VStr, Value)
from .trace import trace_key


def numeric_leaves(value: Value) -> List[VNum]:
    """The numbers ``w1 … wk`` of the output, in deterministic
    (left-to-right) order — the holes of the value context."""
    leaves: List[VNum] = []
    _collect(value, leaves)
    return leaves


def _collect(value: Value, leaves: List[VNum]) -> None:
    if isinstance(value, VNum):
        leaves.append(value)
    elif isinstance(value, VCons):
        _collect(value.head, leaves)
        _collect(value.tail, leaves)


def similar(left: Value, right: Value) -> bool:
    """V ∼ V′: structural equality up to numeric constants; numbers must
    carry the same trace (``n1ᵗ ∼ n2ᵗ``)."""
    if isinstance(left, VNum) and isinstance(right, VNum):
        return trace_key(left.trace) == trace_key(right.trace)
    if isinstance(left, VStr) and isinstance(right, VStr):
        return left.value == right.value
    if isinstance(left, VBool) and isinstance(right, VBool):
        return left.value == right.value
    if isinstance(left, VNil) and isinstance(right, VNil):
        return True
    if isinstance(left, VCons) and isinstance(right, VCons):
        return similar(left.head, right.head) and similar(left.tail,
                                                          right.tail)
    if isinstance(left, VClosure) and isinstance(right, VClosure):
        return True
    return False


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of checking a candidate update ρ against user edits."""

    similar: bool                 # condition (c): V′ ∼ V
    matched: Optional[Dict[int, bool]]  # per edited index: w″i == w′i
    faithful: bool
    plausible: bool
    error: Optional[str] = None   # evaluation error of ρe, if any


def check_update(program, rho, edits: Dict[int, float],
                 original_output: Optional[Value] = None,
                 abs_tol: float = 1e-6) -> UpdateReport:
    """Classify the update ρ per the §3 definitions.

    ``edits`` maps indices into :func:`numeric_leaves` of the original
    output to the user's new values ``w′i``.
    """
    if original_output is None:
        original_output = program.evaluate()
    try:
        new_output = program.substitute(rho).evaluate()
    except LittleError as exc:
        # Condition (c) never holds, so the implication of faithfulness is
        # vacuously true but the update is not plausible in any useful sense.
        return UpdateReport(similar=False, matched=None, faithful=True,
                            plausible=False, error=str(exc))
    if not similar(original_output, new_output):
        # Control flow changed (V′ ≁ V) — e.g. dragging cars1 of the ferris
        # wheel changes numSpokes and therefore the number of shapes (§6.2).
        return UpdateReport(similar=False, matched=None, faithful=True,
                            plausible=False)
    new_leaves = numeric_leaves(new_output)
    matched = {
        index: math.isclose(new_leaves[index].value, wanted,
                            rel_tol=1e-9, abs_tol=abs_tol)
        for index, wanted in edits.items()
    }
    return UpdateReport(
        similar=True,
        matched=matched,
        faithful=all(matched.values()),
        plausible=any(matched.values()),
    )

"""Substitutions ρ: finite maps from program locations to numbers (§3).

"When applied to an expression, the bindings of a substitution are applied
from left-to-right.  Thus, the rightmost binding of any location takes
precedence.  We use juxtaposition ρρ′ to denote concatenation, and we write
ρ ⊕ (ℓ → n) to denote ρ[ℓ → n]."

A Python dict already gives rightmost-wins semantics under ``update``;
:class:`Substitution` wraps one with the paper's vocabulary plus provenance
helpers used in reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..lang.ast import Loc


class Substitution(Mapping[Loc, float]):
    """An immutable substitution; ``extend``/``concat`` return new objects."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[Loc, float]] = None):
        self._map: Dict[Loc, float] = dict(mapping) if mapping else {}

    # Mapping interface -------------------------------------------------------

    def __getitem__(self, loc: Loc) -> float:
        return self._map[loc]

    def __iter__(self) -> Iterator[Loc]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{loc.display()} -> {value}"
                          for loc, value in self._map.items())
        return f"[{inner}]"

    # Paper operations ---------------------------------------------------------

    def extend(self, loc: Loc, value: float) -> "Substitution":
        """ρ ⊕ (ℓ → n)."""
        new = Substitution(self._map)
        new._map[loc] = value
        return new

    def concat(self, other: Mapping[Loc, float]) -> "Substitution":
        """ρρ′ — other's bindings take precedence (rightmost wins)."""
        new = Substitution(self._map)
        new._map.update(other)
        return new

    def changes_from(self, base: Mapping[Loc, float]) -> Dict[Loc, float]:
        """The bindings that differ from ``base`` — the essence of a local
        update ("the set of constants L that are changed", §2.3)."""
        return {loc: value for loc, value in self._map.items()
                if base.get(loc) != value}

    def changed_locs(self, base: Mapping[Loc, float]) -> Tuple[Loc, ...]:
        return tuple(self.changes_from(base))

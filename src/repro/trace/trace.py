"""Run-time traces (paper §2.1 and Figure 2).

``t ::= ℓ | (op t1 … tm)``

A trace leaf is a :class:`~repro.lang.ast.Loc` object itself; compound traces
are :class:`OpTrace` nodes built by the evaluator's E-OP-NUM rule.  Traces
record *data flow but not control flow* (§2.1, "Dataflow-Only Traces").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

from ..lang.ast import Loc
from ..lang.ops import apply_numeric_op


@dataclass(frozen=True, slots=True)
class OpTrace:
    op: str
    args: Tuple["Trace", ...]


Trace = Union[Loc, OpTrace]


def locs(trace: Trace) -> FrozenSet[Loc]:
    """``Locs(t)``: the non-frozen locations appearing in ``trace`` (§4.1).

    Frozen constants (``!`` annotations and Prelude literals) are excluded —
    the synthesizer never changes them (§2.2).
    """
    found = set()
    stack = [trace]
    while stack:
        node = stack.pop()
        if isinstance(node, Loc):
            if not node.frozen:
                found.add(node)
        else:
            stack.extend(node.args)
    return frozenset(found)


def all_locs(trace: Trace) -> FrozenSet[Loc]:
    """All locations in ``trace``, frozen or not."""
    found = set()
    stack = [trace]
    while stack:
        node = stack.pop()
        if isinstance(node, Loc):
            found.add(node)
        else:
            stack.extend(node.args)
    return frozenset(found)


def occurrences(trace: Trace, loc: Loc) -> int:
    """How many times ``loc`` occurs in ``trace`` (counting repeats)."""
    count = 0
    stack = [trace]
    while stack:
        node = stack.pop()
        if isinstance(node, Loc):
            if node == loc:
                count += 1
        else:
            stack.extend(node.args)
    return count


def count_loc_occurrences(traces) -> Dict[Loc, int]:
    """Occurrence counts of every location across ``traces`` — the
    ``Count(ℓ)`` of the biased heuristic (Appendix B.1)."""
    counts: Dict[Loc, int] = {}
    for trace in traces:
        stack = [trace]
        while stack:
            node = stack.pop()
            if isinstance(node, Loc):
                counts[node] = counts.get(node, 0) + 1
            else:
                stack.extend(node.args)
    return counts


def trace_size(trace: Trace) -> int:
    """Number of tree nodes — the "Mean Trace Size" statistic of Appendix G."""
    size = 0
    stack = [trace]
    while stack:
        node = stack.pop()
        size += 1
        if isinstance(node, OpTrace):
            stack.extend(node.args)
    return size


def trace_key(trace: Trace):
    """A hashable structural key, used to deduplicate pre-equations (§5.2.2:
    "we filter out tuples that are identical modulo v and ζ")."""
    if isinstance(trace, Loc):
        return ("loc", trace.ident)
    return (trace.op,) + tuple(trace_key(arg) for arg in trace.args)


def is_addition_only(trace: Trace) -> bool:
    """True when the only operator in ``trace`` is ``+`` — the syntactic
    fragment of SolveA (Appendix B.2)."""
    stack = [trace]
    while stack:
        node = stack.pop()
        if isinstance(node, OpTrace):
            if node.op != "+":
                return False
            stack.extend(node.args)
    return True


def eval_trace(trace: Trace, rho) -> float:
    """``ρt``: evaluate a trace under a substitution giving every location a
    value.  Raises ``KeyError`` for unmapped locations and
    :class:`~repro.lang.errors.LittleRuntimeError` on domain errors."""
    if isinstance(trace, Loc):
        return rho[trace]
    args = [eval_trace(arg, rho) for arg in trace.args]
    return apply_numeric_op(trace.op, args)


def format_trace(trace: Trace) -> str:
    """Render a trace in the paper's prefix notation, e.g.
    ``(+ x0 (* i sep))``."""
    if isinstance(trace, Loc):
        return trace.display()
    inner = " ".join(format_trace(arg) for arg in trace.args)
    return f"({trace.op} {inner})" if inner else f"({trace.op})"

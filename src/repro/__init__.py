"""repro — a Python reproduction of Sketch-n-Sketch (PLDI 2016).

"Programmatic and Direct Manipulation, Together at Last" by Chugh, Hempel,
Spradlin and Albers.  The package implements the ``little`` language, its
trace-instrumented evaluator, trace-based program synthesis, the SVG zone /
assignment / trigger pipeline, a headless live-synchronization editor, and
a multi-session sync service (``repro.serve``, ``python -m repro serve``).

Start at ``README.md`` and ``docs/`` in the repository root; the console
examples there run as doctests.
"""

__version__ = "1.0.0"

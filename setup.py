"""Legacy setup shim: the container has setuptools but no `wheel`, so
editable installs must go through `setup.py develop` (--no-use-pep517)."""

from setuptools import setup

setup()

"""Legacy setup shim: the container has setuptools but no `wheel`, so
editable installs must go through `setup.py develop` (--no-use-pep517).

The ``package_data`` entries ship the ``.little`` language assets (the
Prelude and the example corpus) in installed, non-editable mode — they are
loaded at runtime through ``importlib.resources``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-sketch-n-sketch",
    version="1.0.0",
    description=("Reproduction of 'Programmatic and Direct Manipulation, "
                 "Together at Last' (PLDI 2016)"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={
        "repro.lang": ["programs/*.little"],
        "repro.examples": ["programs/*.little"],
    },
    include_package_data=True,
    # slots=True dataclasses (values/trace layer) need 3.10+.
    python_requires=">=3.10",
)
